//! Scheduler unit tests. The `start_paused` knob makes queue states
//! deterministic: tests enqueue everything while paused, then resume
//! with a single worker and observe the dequeue order.

use super::*;
use std::sync::atomic::{AtomicUsize, Ordering as AtomicOrdering};
use std::sync::mpsc;

fn single_worker_paused() -> Scheduler {
    Scheduler::new(SchedulerConfig {
        workers: 1,
        queue_capacity: 64,
        start_paused: true,
        ..Default::default()
    })
}

#[test]
fn runs_a_job_and_counts_completion() {
    let sched = Scheduler::new(SchedulerConfig {
        workers: 2,
        ..Default::default()
    });
    let (tx, rx) = mpsc::channel();
    sched
        .submit("alice", SubmitOptions::default(), move |ctx| {
            tx.send(ctx.queue_wait).unwrap();
            JobDisposition::Completed
        })
        .unwrap();
    rx.recv_timeout(Duration::from_secs(5)).unwrap();
    assert!(sched.wait_idle(Duration::from_secs(5)));
    let stats = sched.stats();
    assert_eq!(stats.totals.submitted, 1);
    assert_eq!(stats.totals.completed, 1);
    assert_eq!(stats.tenants["alice"].completed, 1);
}

#[test]
fn fair_dequeue_interleaves_skewed_tenants() {
    // Tenant "heavy" floods 6 jobs before "light" submits 2. With
    // equal weights the scheduler must alternate turns, so light's
    // jobs run long before heavy's backlog drains.
    let sched = single_worker_paused();
    let order = Arc::new(Mutex::new(Vec::new()));
    for i in 0..6 {
        let order = Arc::clone(&order);
        sched
            .submit("heavy", SubmitOptions::default(), move |_| {
                order.lock().unwrap().push(format!("heavy{i}"));
                JobDisposition::Completed
            })
            .unwrap();
    }
    for i in 0..2 {
        let order = Arc::clone(&order);
        sched
            .submit("light", SubmitOptions::default(), move |_| {
                order.lock().unwrap().push(format!("light{i}"));
                JobDisposition::Completed
            })
            .unwrap();
    }
    sched.resume();
    assert!(sched.wait_idle(Duration::from_secs(5)));
    let order = order.lock().unwrap().clone();
    assert_eq!(order.len(), 8);
    // Round-robin with weight 1: H L H L H H H H.
    let light_positions: Vec<usize> = order
        .iter()
        .enumerate()
        .filter(|(_, s)| s.starts_with("light"))
        .map(|(i, _)| i)
        .collect();
    assert_eq!(
        light_positions,
        vec![1, 3],
        "light tenant should interleave, got order {order:?}"
    );
    // Within each tenant, FIFO order is preserved.
    let heavy: Vec<_> = order.iter().filter(|s| s.starts_with("heavy")).collect();
    assert_eq!(heavy, ["heavy0", "heavy1", "heavy2", "heavy3", "heavy4", "heavy5"]);
}

#[test]
fn tenant_weight_grants_longer_turns() {
    let sched = single_worker_paused();
    sched.set_tenant_weight("big", 2);
    let order = Arc::new(Mutex::new(Vec::new()));
    for i in 0..4 {
        let order = Arc::clone(&order);
        sched
            .submit("big", SubmitOptions::default(), move |_| {
                order.lock().unwrap().push(format!("big{i}"));
                JobDisposition::Completed
            })
            .unwrap();
    }
    for i in 0..2 {
        let order = Arc::clone(&order);
        sched
            .submit("small", SubmitOptions::default(), move |_| {
                order.lock().unwrap().push(format!("small{i}"));
                JobDisposition::Completed
            })
            .unwrap();
    }
    sched.resume();
    assert!(sched.wait_idle(Duration::from_secs(5)));
    let order = order.lock().unwrap().clone();
    // Weight 2 for big: B B S B B S.
    assert_eq!(
        order,
        ["big0", "big1", "small0", "big2", "big3", "small1"],
        "weighted turn order mismatch"
    );
}

#[test]
fn admission_control_rejects_at_capacity() {
    let sched = Scheduler::new(SchedulerConfig {
        workers: 1,
        queue_capacity: 2,
        start_paused: true,
        ..Default::default()
    });
    for _ in 0..2 {
        sched
            .submit("bob", SubmitOptions::default(), |_| JobDisposition::Completed)
            .unwrap();
    }
    let err = sched
        .submit("bob", SubmitOptions::default(), |_| JobDisposition::Completed)
        .unwrap_err();
    assert_eq!(err.kind(), "overloaded");
    assert!(err.message().contains("bob"));
    // Other tenants are unaffected by bob's full queue.
    sched
        .submit("carol", SubmitOptions::default(), |_| JobDisposition::Completed)
        .unwrap();
    let stats = sched.stats();
    assert_eq!(stats.tenants["bob"].rejected, 1);
    assert_eq!(stats.tenants["bob"].queue_depth, 2);
    assert_eq!(stats.tenants["carol"].rejected, 0);
    sched.resume();
    assert!(sched.wait_idle(Duration::from_secs(5)));
    assert_eq!(sched.stats().totals.completed, 3);
}

#[test]
fn deadline_trips_token_mid_execution() {
    let sched = Scheduler::new(SchedulerConfig {
        workers: 1,
        ..Default::default()
    });
    let ticket = sched
        .submit(
            "dave",
            SubmitOptions {
                deadline: Some(Duration::from_millis(30)),
                ..Default::default()
            },
            |ctx| {
                // Busy-loop like the engine does, polling the token.
                let start = Instant::now();
                while !ctx.token.is_cancelled() {
                    if start.elapsed() > Duration::from_secs(10) {
                        return JobDisposition::Failed; // never hit
                    }
                    std::thread::yield_now();
                }
                match ctx.token.reason() {
                    Some(CancelReason::Timeout) => JobDisposition::TimedOut,
                    _ => JobDisposition::Cancelled,
                }
            },
        )
        .unwrap();
    assert!(sched.wait_idle(Duration::from_secs(5)));
    assert_eq!(ticket.token.reason(), Some(CancelReason::Timeout));
    let stats = sched.stats();
    assert_eq!(stats.tenants["dave"].timed_out, 1);
    assert_eq!(stats.tenants["dave"].completed, 0);
}

#[test]
fn cancel_before_start_job_observes_token_immediately() {
    // A queued job whose token is tripped before a worker picks it up:
    // the job body sees the cancellation on entry and can skip all work.
    let sched = single_worker_paused();
    let executed_work = Arc::new(AtomicUsize::new(0));
    let ew = Arc::clone(&executed_work);
    let ticket = sched
        .submit("erin", SubmitOptions::default(), move |ctx| {
            if ctx.token.is_cancelled() {
                return JobDisposition::Cancelled;
            }
            ew.fetch_add(1, AtomicOrdering::SeqCst);
            JobDisposition::Completed
        })
        .unwrap();
    assert!(ticket.token.cancel(CancelReason::Cancelled));
    sched.resume();
    assert!(sched.wait_idle(Duration::from_secs(5)));
    assert_eq!(executed_work.load(AtomicOrdering::SeqCst), 0);
    let stats = sched.stats();
    assert_eq!(stats.tenants["erin"].cancelled, 1);
    assert_eq!(stats.tenants["erin"].completed, 0);
}

#[test]
fn cancel_mid_execution_unwinds_cooperatively() {
    let sched = Scheduler::new(SchedulerConfig {
        workers: 1,
        ..Default::default()
    });
    let (started_tx, started_rx) = mpsc::channel();
    let ticket = sched
        .submit("frank", SubmitOptions::default(), move |ctx| {
            started_tx.send(()).unwrap();
            let start = Instant::now();
            while !ctx.token.is_cancelled() {
                if start.elapsed() > Duration::from_secs(10) {
                    return JobDisposition::Failed; // never hit
                }
                std::thread::yield_now();
            }
            JobDisposition::Cancelled
        })
        .unwrap();
    started_rx.recv_timeout(Duration::from_secs(5)).unwrap();
    assert!(ticket.token.cancel(CancelReason::Cancelled));
    assert!(sched.wait_idle(Duration::from_secs(5)));
    assert_eq!(sched.stats().tenants["frank"].cancelled, 1);
}

#[test]
fn shutdown_cancels_queued_jobs() {
    let sched = single_worker_paused();
    let executed_work = Arc::new(AtomicUsize::new(0));
    let tickets: Vec<JobTicket> = (0..3)
        .map(|_| {
            let ew = Arc::clone(&executed_work);
            sched
                .submit("grace", SubmitOptions::default(), move |ctx| {
                    if ctx.token.is_cancelled() {
                        return JobDisposition::Cancelled;
                    }
                    ew.fetch_add(1, AtomicOrdering::SeqCst);
                    JobDisposition::Completed
                })
                .unwrap()
        })
        .collect();
    drop(sched); // Drop drains queues with tokens tripped as Shutdown.
    assert_eq!(executed_work.load(AtomicOrdering::SeqCst), 0);
    for t in tickets {
        assert_eq!(t.token.reason(), Some(CancelReason::Shutdown));
    }
}

#[test]
fn submit_after_shutdown_is_rejected() {
    let sched = Scheduler::new(SchedulerConfig {
        workers: 1,
        ..Default::default()
    });
    // Simulate the shutdown flag without dropping (drop joins threads).
    sched.lock().shutdown = true;
    let err = sched
        .submit("heidi", SubmitOptions::default(), |_| JobDisposition::Completed)
        .unwrap_err();
    assert_eq!(err.kind(), "cancelled");
    // Undo so Drop's worker join doesn't deadlock on a paused queue.
    sched.lock().shutdown = false;
}

#[test]
fn stats_track_queue_wait_and_exec_time() {
    let sched = Scheduler::new(SchedulerConfig {
        workers: 1,
        ..Default::default()
    });
    sched
        .submit("ivan", SubmitOptions::default(), |_| {
            std::thread::sleep(Duration::from_millis(5));
            JobDisposition::Completed
        })
        .unwrap();
    assert!(sched.wait_idle(Duration::from_secs(5)));
    let stats = sched.stats();
    let t = &stats.tenants["ivan"];
    assert_eq!(t.finished(), 1);
    assert!(t.total_exec_micros >= 4_000, "exec {} µs", t.total_exec_micros);
    assert!(t.mean_exec_micros() >= 4_000.0);
}

#[test]
fn parallel_job_holds_multiple_slots() {
    // A DOP-4 query consumes 4 worker slots: while it runs, a serial
    // job from another tenant must wait even though worker threads are
    // free.
    let sched = Scheduler::new(SchedulerConfig {
        workers: 4,
        ..Default::default()
    });
    let (hold_tx, hold_rx) = mpsc::channel::<()>();
    let (started_tx, started_rx) = mpsc::channel();
    sched
        .submit(
            "wide",
            SubmitOptions {
                slots: 4,
                ..Default::default()
            },
            move |_| {
                started_tx.send(()).unwrap();
                hold_rx.recv().unwrap();
                JobDisposition::Completed
            },
        )
        .unwrap();
    started_rx.recv_timeout(Duration::from_secs(5)).unwrap();
    let narrow_ran = Arc::new(AtomicUsize::new(0));
    let nr = Arc::clone(&narrow_ran);
    sched
        .submit("narrow", SubmitOptions::default(), move |_| {
            nr.fetch_add(1, AtomicOrdering::SeqCst);
            JobDisposition::Completed
        })
        .unwrap();
    std::thread::sleep(Duration::from_millis(50));
    let stats = sched.stats();
    assert_eq!(stats.totals.running, 1);
    assert_eq!(stats.totals.running_slots, 4);
    assert_eq!(stats.tenants["wide"].running_slots, 4);
    assert_eq!(sched.free_slots(), 0);
    assert_eq!(narrow_ran.load(AtomicOrdering::SeqCst), 0, "narrow job must be slot-gated");
    hold_tx.send(()).unwrap();
    assert!(sched.wait_idle(Duration::from_secs(5)));
    assert_eq!(narrow_ran.load(AtomicOrdering::SeqCst), 1);
    let stats = sched.stats();
    assert_eq!(stats.totals.running_slots, 0);
    assert_eq!(sched.free_slots(), stats.slots);
}

#[test]
fn narrow_job_slips_past_queued_wide_job() {
    // First fit over the rotation: a queued DOP-2 job that doesn't fit
    // must not block another tenant's serial job from using the one
    // free slot.
    let sched = Scheduler::new(SchedulerConfig {
        workers: 2,
        ..Default::default()
    });
    let (hold_tx, hold_rx) = mpsc::channel::<()>();
    let (started_tx, started_rx) = mpsc::channel();
    sched
        .submit("holder", SubmitOptions::default(), move |_| {
            started_tx.send(()).unwrap();
            hold_rx.recv().unwrap();
            JobDisposition::Completed
        })
        .unwrap();
    started_rx.recv_timeout(Duration::from_secs(5)).unwrap();
    let order = Arc::new(Mutex::new(Vec::new()));
    let o = Arc::clone(&order);
    sched
        .submit(
            "wide",
            SubmitOptions {
                slots: 2,
                ..Default::default()
            },
            move |_| {
                o.lock().unwrap().push("wide");
                JobDisposition::Completed
            },
        )
        .unwrap();
    let o = Arc::clone(&order);
    let (narrow_done_tx, narrow_done_rx) = mpsc::channel();
    sched
        .submit("narrow", SubmitOptions::default(), move |_| {
            o.lock().unwrap().push("narrow");
            narrow_done_tx.send(()).unwrap();
            JobDisposition::Completed
        })
        .unwrap();
    // The narrow job runs in the free slot while the wide one waits.
    narrow_done_rx.recv_timeout(Duration::from_secs(5)).unwrap();
    assert_eq!(order.lock().unwrap().clone(), vec!["narrow"]);
    assert_eq!(sched.queue_depth("wide"), 1);
    hold_tx.send(()).unwrap();
    assert!(sched.wait_idle(Duration::from_secs(5)));
    assert_eq!(order.lock().unwrap().clone(), vec!["narrow", "wide"]);
}

#[test]
fn starved_wide_job_earns_reservation_against_narrow_stream() {
    // A DOP-4 job behind a stream of narrow jobs: first fit would let
    // each narrow job slip through the free slots forever (one slot is
    // pinned by a holder, so the wide job never fits). After enough
    // pass-overs the wide job must earn a reservation that holds the
    // narrow stream back, drains the pinned slot's tenant, and runs.
    let sched = Scheduler::new(SchedulerConfig {
        workers: 4,
        ..Default::default()
    });
    let (hold_tx, hold_rx) = mpsc::channel::<()>();
    let (started_tx, started_rx) = mpsc::channel();
    sched
        .submit("holder", SubmitOptions::default(), move |_| {
            started_tx.send(()).unwrap();
            hold_rx.recv().unwrap();
            JobDisposition::Completed
        })
        .unwrap();
    started_rx.recv_timeout(Duration::from_secs(5)).unwrap();
    sched
        .submit(
            "wide",
            SubmitOptions {
                slots: 4,
                ..Default::default()
            },
            |_| JobDisposition::Completed,
        )
        .unwrap();
    // Feed narrow jobs until the reservation engages: once it does, new
    // narrow jobs stay queued even though a slot is free for them.
    let deadline = Instant::now() + Duration::from_secs(10);
    let mut submitted = 0;
    loop {
        sched
            .submit("narrow", SubmitOptions::default(), |_| JobDisposition::Completed)
            .unwrap();
        submitted += 1;
        std::thread::sleep(Duration::from_millis(2));
        if sched.queue_depth("narrow") > 0 {
            break; // held back: the wide job's slots are reserved
        }
        assert!(
            Instant::now() < deadline,
            "reservation never engaged after {submitted} narrow jobs slipped past the wide job"
        );
    }
    assert_eq!(sched.queue_depth("wide"), 1, "wide job still queued");
    // Release the pinned slot: the reserved wide job must now run, and
    // the held-back narrow jobs drain after it.
    hold_tx.send(()).unwrap();
    assert!(sched.wait_idle(Duration::from_secs(10)));
    let stats = sched.stats();
    assert_eq!(stats.tenants["wide"].completed, 1);
    assert_eq!(stats.tenants["narrow"].completed, submitted);
    assert_eq!(stats.totals.running_slots, 0);
}

#[test]
fn cancelled_wide_job_releases_all_slots() {
    // Cancelling a DOP-4 job mid-execution must return every slot to
    // the pool promptly.
    let sched = Scheduler::new(SchedulerConfig {
        workers: 4,
        ..Default::default()
    });
    let (started_tx, started_rx) = mpsc::channel();
    let ticket = sched
        .submit(
            "kate",
            SubmitOptions {
                slots: 4,
                ..Default::default()
            },
            move |ctx| {
                started_tx.send(()).unwrap();
                let start = Instant::now();
                while !ctx.token.is_cancelled() {
                    if start.elapsed() > Duration::from_secs(10) {
                        return JobDisposition::Failed; // never hit
                    }
                    std::thread::yield_now();
                }
                JobDisposition::Cancelled
            },
        )
        .unwrap();
    started_rx.recv_timeout(Duration::from_secs(5)).unwrap();
    assert_eq!(sched.free_slots(), 0);
    assert!(ticket.token.cancel(CancelReason::Cancelled));
    assert!(sched.wait_idle(Duration::from_secs(5)));
    let stats = sched.stats();
    assert_eq!(stats.tenants["kate"].cancelled, 1);
    assert_eq!(stats.totals.running_slots, 0);
    assert_eq!(sched.free_slots(), stats.slots);
}

#[test]
fn oversized_slot_request_is_clamped_to_capacity() {
    // A job asking for more slots than exist must still be runnable.
    let sched = Scheduler::new(SchedulerConfig {
        workers: 2,
        ..Default::default()
    });
    let (hold_tx, hold_rx) = mpsc::channel::<()>();
    let (started_tx, started_rx) = mpsc::channel();
    sched
        .submit(
            "greedy",
            SubmitOptions {
                slots: 100,
                ..Default::default()
            },
            move |_| {
                started_tx.send(()).unwrap();
                hold_rx.recv().unwrap();
                JobDisposition::Completed
            },
        )
        .unwrap();
    started_rx.recv_timeout(Duration::from_secs(5)).unwrap();
    assert_eq!(sched.stats().totals.running_slots, 2);
    hold_tx.send(()).unwrap();
    assert!(sched.wait_idle(Duration::from_secs(5)));
}

#[test]
fn default_deadline_applies_when_not_overridden() {
    let sched = Scheduler::new(SchedulerConfig {
        workers: 1,
        queue_capacity: 8,
        default_deadline: Some(Duration::from_millis(20)),
        ..Default::default()
    });
    sched
        .submit("judy", SubmitOptions::default(), |ctx| {
            let start = Instant::now();
            while !ctx.token.is_cancelled() {
                if start.elapsed() > Duration::from_secs(10) {
                    return JobDisposition::Failed;
                }
                std::thread::yield_now();
            }
            JobDisposition::TimedOut
        })
        .unwrap();
    assert!(sched.wait_idle(Duration::from_secs(5)));
    assert_eq!(sched.stats().tenants["judy"].timed_out, 1);
}

#[test]
fn panicking_job_fails_alone_and_releases_slots() {
    let sched = Scheduler::new(SchedulerConfig {
        workers: 4,
        ..Default::default()
    });
    let total_slots = sched.stats().slots;
    sched
        .submit(
            "kate",
            SubmitOptions {
                slots: 4,
                ..Default::default()
            },
            |_| -> JobDisposition { panic!("worker bug") },
        )
        .unwrap();
    assert!(sched.wait_idle(Duration::from_secs(5)));
    // The panic was contained: slots are back, the worker thread is
    // alive, and the next submission runs normally.
    assert_eq!(sched.free_slots(), total_slots);
    sched
        .submit("kate", SubmitOptions::default(), |_| JobDisposition::Completed)
        .unwrap();
    assert!(sched.wait_idle(Duration::from_secs(5)));
    let kate = &sched.stats().tenants["kate"];
    assert_eq!(kate.failed, 1);
    assert_eq!(kate.failed_internal, 1);
    assert_eq!(kate.completed, 1);
    assert_eq!(sched.free_slots(), total_slots);
}

#[test]
fn job_reports_attribute_failure_class_and_degraded_retries() {
    let sched = Scheduler::new(SchedulerConfig {
        workers: 1,
        ..Default::default()
    });
    sched
        .submit("lena", SubmitOptions::default(), |_| {
            JobReport::failed(FailureClass::Resource)
        })
        .unwrap();
    sched
        .submit("lena", SubmitOptions::default(), |_| {
            JobReport::new(JobDisposition::Completed).with_degraded_retry(true)
        })
        .unwrap();
    sched
        .submit("lena", SubmitOptions::default(), |_| {
            JobReport::failed(FailureClass::Execution)
        })
        .unwrap();
    assert!(sched.wait_idle(Duration::from_secs(5)));
    let lena = &sched.stats().tenants["lena"];
    assert_eq!(lena.completed, 1);
    assert_eq!(lena.failed, 2);
    assert_eq!(lena.failed_resource, 1);
    assert_eq!(lena.failed_internal, 0);
    assert_eq!(lena.degraded_retries, 1);
}

#[test]
fn load_snapshot_tracks_queue_pressure_and_backoff() {
    let sched = single_worker_paused();
    let idle = sched.load();
    assert_eq!(idle.queued, 0);
    assert!(!idle.saturated());
    assert_eq!(idle.retry_after_secs(), 1, "empty backlog still hints >= 1s");

    for _ in 0..5 {
        sched
            .submit("ada", SubmitOptions::default(), |_| JobDisposition::Completed)
            .unwrap();
    }
    let queued = sched.load();
    assert_eq!(queued.queued, 5);
    assert_eq!(queued.workers, 1);
    assert_eq!(queued.retry_after_secs(), 5, "5 queued / 1 worker = 5s hint");

    sched.resume();
    assert!(sched.wait_idle(Duration::from_secs(5)));
    assert_eq!(sched.load().queued, 0);
}

#[test]
fn load_snapshot_backoff_is_clamped() {
    let snap = LoadSnapshot {
        workers: 1,
        slot_capacity: 1,
        running_slots: 1,
        queued: 10_000,
        queue_capacity: 64,
    };
    assert!(snap.saturated());
    assert_eq!(snap.retry_after_secs(), 30);
}
