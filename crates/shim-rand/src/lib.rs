//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no access to crates.io, so the workspace
//! vendors the small slice of the `rand` 0.9 API it actually uses:
//! [`rngs::StdRng`], [`SeedableRng::seed_from_u64`], and the [`Rng`]
//! methods `random`, `random_range`, and `random_bool`.
//!
//! The generator is xoshiro256** seeded through SplitMix64 — a different
//! stream than upstream `StdRng` (ChaCha12), but the workspace only
//! relies on *determinism for a given seed*, never on specific values.

/// Seedable random number generators.
pub trait SeedableRng: Sized {
    /// Create a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// SplitMix64 step, used to expand a 64-bit seed into generator state.
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Core 64-bit generator interface.
pub trait RngCore {
    fn next_u64(&mut self) -> u64;
}

/// Types that can be sampled uniformly over their whole domain by
/// `Rng::random`.
pub trait Standard: Sized {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 uniform mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Types with a uniform sampler over a half-open or closed range.
///
/// The generic blanket impls of [`SampleRange`] over this trait mirror
/// upstream `rand`: they are what lets `rng.random_range(0..3)` infer
/// `usize` from an indexing context.
pub trait SampleUniform: Copy + PartialOrd {
    /// Sample uniformly from `[start, end)` (`inclusive = false`) or
    /// `[start, end]` (`inclusive = true`).
    fn sample_uniform<R: RngCore + ?Sized>(
        rng: &mut R,
        start: Self,
        end: Self,
        inclusive: bool,
    ) -> Self;
}

macro_rules! uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_uniform<R: RngCore + ?Sized>(
                rng: &mut R,
                start: Self,
                end: Self,
                inclusive: bool,
            ) -> Self {
                let span = (end as i128 - start as i128) + i128::from(inclusive);
                assert!(span > 0, "empty range in random_range");
                let v = (rng.next_u64() as u128) % span as u128;
                (start as i128 + v as i128) as $t
            }
        }
    )*};
}
uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleUniform for f64 {
    fn sample_uniform<R: RngCore + ?Sized>(
        rng: &mut R,
        start: Self,
        end: Self,
        _inclusive: bool,
    ) -> Self {
        assert!(start < end, "empty range in random_range");
        start + f64::sample(rng) * (end - start)
    }
}

impl SampleUniform for f32 {
    fn sample_uniform<R: RngCore + ?Sized>(
        rng: &mut R,
        start: Self,
        end: Self,
        _inclusive: bool,
    ) -> Self {
        assert!(start < end, "empty range in random_range");
        start + f32::sample(rng) * (end - start)
    }
}

/// Ranges that `Rng::random_range` accepts.
pub trait SampleRange<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for std::ops::Range<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_uniform(rng, self.start, self.end, false)
    }
}

impl<T: SampleUniform> SampleRange<T> for std::ops::RangeInclusive<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_uniform(rng, *self.start(), *self.end(), true)
    }
}

/// User-facing sampling methods, mirroring `rand::Rng`.
pub trait Rng: RngCore {
    /// A uniform sample over the full domain of `T`.
    fn random<T: Standard>(&mut self) -> T {
        T::sample(self)
    }

    /// A uniform sample from `range`.
    fn random_range<T: SampleUniform, RG: SampleRange<T>>(&mut self, range: RG) -> T {
        range.sample_from(self)
    }

    /// `true` with probability `p`.
    fn random_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "probability out of range");
        f64::sample(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

pub mod rngs {
    use super::{splitmix64, RngCore, SeedableRng};

    /// Deterministic xoshiro256** generator standing in for `StdRng`.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            let mut s = [0u64; 4];
            for slot in &mut s {
                *slot = splitmix64(&mut sm);
            }
            // All-zero state would be a fixed point; SplitMix64 cannot
            // produce four zeros from any seed, but guard anyway.
            if s.iter().all(|&w| w == 0) {
                s[0] = 0x9E37_79B9_7F4A_7C15;
            }
            StdRng { s }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[1]
                .wrapping_mul(5)
                .rotate_left(7)
                .wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_for_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.random_range(0..1000usize), b.random_range(0..1000usize));
        }
    }

    #[test]
    fn seeds_differ() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        let va: Vec<u64> = (0..8).map(|_| a.random_range(0..u64::MAX)).collect();
        let vb: Vec<u64> = (0..8).map(|_| b.random_range(0..u64::MAX)).collect();
        assert_ne!(va, vb);
    }

    #[test]
    fn ranges_respected() {
        let mut r = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let v = r.random_range(10..20i64);
            assert!((10..20).contains(&v));
            let f = r.random_range(0.5..2.5f64);
            assert!((0.5..2.5).contains(&f));
            let x: f64 = r.random();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn random_bool_probabilities() {
        let mut r = StdRng::seed_from_u64(9);
        assert!((0..100).all(|_| !r.random_bool(0.0)));
        assert!((0..100).all(|_| r.random_bool(1.0)));
        let hits = (0..10_000).filter(|_| r.random_bool(0.3)).count();
        assert!((2000..4000).contains(&hits), "p=0.3 gave {hits}/10000");
    }
}
