//! Relaxed-schema ingest (§3.1 of the paper).
//!
//! SQLShare's ingest is deliberately forgiving: "we have designed the
//! system to ensure that we do not reject such dirty data". Files are
//! staged server-side, the row/column format is inferred by trying
//! delimiters until the first N rows parse with identical column counts,
//! column types are inferred from a prefix with a revert-to-string
//! fallback when later rows disagree, missing column names get defaults
//! (almost 50% of real uploads had none), and ragged rows are padded
//! with NULLs (9% of real uploads used this).
//!
//! The entry point is [`ingest_text`]; [`staging::Staging`] adds the
//! server-side staging/retry behaviour.

pub mod delimiter;
pub mod names;
pub mod parser;
pub mod staging;
pub mod types;

use sqlshare_common::{Error, Result};
use sqlshare_engine::{Column, DataType, Schema, Table, Value};

/// Header handling for an upload.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum HeaderMode {
    /// Decide from the data (first row looks like labels, not values).
    #[default]
    Auto,
    /// The first row is a header.
    Present,
    /// There is no header; assign default names.
    Absent,
}

/// Ingest options.
#[derive(Debug, Clone)]
pub struct IngestOptions {
    pub header: HeaderMode,
    /// How many rows the inference prefix inspects (the paper's "first N
    /// records").
    pub inference_prefix: usize,
    /// Force a column delimiter instead of inferring one.
    pub delimiter: Option<char>,
}

impl Default for IngestOptions {
    fn default() -> Self {
        IngestOptions {
            header: HeaderMode::Auto,
            inference_prefix: 100,
            delimiter: None,
        }
    }
}

/// What happened during an ingest — the §3.1/§5.1 accounting.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct IngestReport {
    /// Inferred (or forced) column delimiter.
    pub delimiter: char,
    /// Whether a header row was used.
    pub header_used: bool,
    /// Number of columns that received a default (`columnN`) name.
    pub default_names_assigned: usize,
    /// True when *every* column name was defaulted (1691 of 3891 tables in
    /// the paper's corpus).
    pub all_names_defaulted: bool,
    /// Rows shorter than the widest row, padded with NULLs.
    pub padded_rows: usize,
    /// Columns whose inferred type was reverted to string when a
    /// non-conforming value appeared past the inference prefix.
    pub type_reverts: Vec<String>,
    /// Ingested row count.
    pub rows: usize,
    /// Final column count.
    pub columns: usize,
}

/// Parse, infer, and load a delimited text file into an engine [`Table`].
pub fn ingest_text(name: &str, content: &str, options: &IngestOptions) -> Result<(Table, IngestReport)> {
    if content.trim().is_empty() {
        return Err(Error::Ingest(format!("upload '{name}' is empty")));
    }
    let delimiter = match options.delimiter {
        Some(d) => d,
        None => delimiter::infer_delimiter(content, options.inference_prefix)?,
    };
    let mut records = parser::parse_delimited(content, delimiter);
    if records.is_empty() {
        return Err(Error::Ingest(format!("upload '{name}' has no rows")));
    }

    // Widest row defines the column count; short rows get NULL padding.
    let width = records.iter().map(Vec::len).max().unwrap_or(0);
    if width == 0 {
        return Err(Error::Ingest(format!("upload '{name}' has no columns")));
    }

    // Header handling.
    let header_used = match options.header {
        HeaderMode::Present => true,
        HeaderMode::Absent => false,
        HeaderMode::Auto => names::looks_like_header(&records),
    };
    let raw_names: Vec<Option<String>> = if header_used {
        let header = records.remove(0);
        (0..width)
            .map(|i| {
                header
                    .get(i)
                    .map(|s| s.trim())
                    .filter(|s| !s.is_empty())
                    .map(str::to_string)
            })
            .collect()
    } else {
        vec![None; width]
    };
    if records.is_empty() {
        return Err(Error::Ingest(format!(
            "upload '{name}' contains only a header row"
        )));
    }
    let (column_names, default_names_assigned) = names::finalize_names(&raw_names);
    let all_names_defaulted = default_names_assigned == width;

    // Pad ragged rows.
    let mut padded_rows = 0usize;
    for r in &mut records {
        if r.len() < width {
            padded_rows += 1;
            r.resize(width, String::new());
        }
    }

    // Type inference over the prefix, then full conversion with
    // revert-to-string fallback.
    let inferred = types::infer_types(&records, options.inference_prefix);
    let (rows, final_types, reverted) = types::convert_rows(&records, &inferred);
    let type_reverts: Vec<String> = reverted
        .iter()
        .map(|&i| column_names[i].clone())
        .collect();

    let schema = Schema::new(
        column_names
            .iter()
            .zip(&final_types)
            .map(|(n, t)| Column::new(n.clone(), *t))
            .collect(),
    );
    let report = IngestReport {
        delimiter,
        header_used,
        default_names_assigned,
        all_names_defaulted,
        padded_rows,
        type_reverts,
        rows: rows.len(),
        columns: width,
    };
    Ok((Table::new(name, schema, rows), report))
}

/// Convert a parsed cell to a NULL-aware value of the given type; used by
/// `types::convert_rows` and exposed for tests.
pub fn cell_to_value(cell: &str, ty: DataType) -> Option<Value> {
    let trimmed = cell.trim();
    if trimmed.is_empty() {
        return Some(Value::Null);
    }
    match ty {
        DataType::Text => Some(Value::Text(cell.to_string())),
        DataType::Int => trimmed.parse::<i64>().ok().map(Value::Int),
        DataType::Float => trimmed.parse::<f64>().ok().map(Value::Float),
        DataType::Bool => match trimmed.to_ascii_lowercase().as_str() {
            "true" | "t" | "yes" => Some(Value::Bool(true)),
            "false" | "f" | "no" => Some(Value::Bool(false)),
            _ => None,
        },
        DataType::Date => sqlshare_engine::value::parse_date(trimmed).map(Value::Date),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clean_csv_with_header() {
        let (table, report) = ingest_text(
            "t",
            "station,depth,ph\n1,5.0,8.1\n2,10.0,7.9\n",
            &IngestOptions::default(),
        )
        .unwrap();
        assert_eq!(report.delimiter, ',');
        assert!(report.header_used);
        assert_eq!(report.default_names_assigned, 0);
        assert_eq!(table.schema.names(), vec!["station", "depth", "ph"]);
        assert_eq!(table.schema.columns[0].ty, DataType::Int);
        assert_eq!(table.schema.columns[1].ty, DataType::Float);
        assert_eq!(table.row_count(), 2);
    }

    #[test]
    fn headerless_csv_gets_default_names() {
        let (table, report) = ingest_text("t", "1,2\n3,4\n", &IngestOptions::default()).unwrap();
        assert!(!report.header_used);
        assert_eq!(table.schema.names(), vec!["column0", "column1"]);
        assert!(report.all_names_defaulted);
        assert_eq!(report.default_names_assigned, 2);
    }

    #[test]
    fn tab_separated_inferred() {
        let (table, report) =
            ingest_text("t", "a\tb\n1\tx\n2\ty\n", &IngestOptions::default()).unwrap();
        assert_eq!(report.delimiter, '\t');
        assert_eq!(table.schema.names(), vec!["a", "b"]);
    }

    #[test]
    fn ragged_rows_padded_with_null() {
        let (table, report) = ingest_text(
            "t",
            "a,b,c\n1,2,3\n4,5\n6\n",
            &IngestOptions {
                header: HeaderMode::Present,
                ..Default::default()
            },
        )
        .unwrap();
        assert_eq!(report.padded_rows, 2);
        assert_eq!(table.row_count(), 3);
        let rows = table.rows();
        let short = rows.iter().find(|r| r[0] == Value::Int(6)).unwrap();
        assert!(short[1].is_null() && short[2].is_null());
    }

    #[test]
    fn partial_header_names_filled_in() {
        let (table, report) = ingest_text(
            "t",
            "id,,notes\n1,5.5,hello\n",
            &IngestOptions {
                header: HeaderMode::Present,
                ..Default::default()
            },
        )
        .unwrap();
        assert_eq!(table.schema.names(), vec!["id", "column1", "notes"]);
        assert_eq!(report.default_names_assigned, 1);
        assert!(!report.all_names_defaulted);
    }

    #[test]
    fn revert_to_string_past_prefix() {
        // First 3 rows are integers; a later row is not. The column must
        // revert to text and keep every original value.
        let mut content = String::from("v\n");
        for i in 0..5 {
            content.push_str(&format!("{i}\n"));
        }
        content.push_str("oops\n");
        let (table, report) = ingest_text(
            "t",
            &content,
            &IngestOptions {
                header: HeaderMode::Present,
                inference_prefix: 3,
                ..Default::default()
            },
        )
        .unwrap();
        assert_eq!(report.type_reverts, vec!["v"]);
        assert_eq!(table.schema.columns[0].ty, DataType::Text);
        assert_eq!(table.row_count(), 6);
        assert!(table.rows().iter().any(|r| r[0] == Value::Text("oops".into())));
    }

    #[test]
    fn empty_input_rejected() {
        assert!(ingest_text("t", "", &IngestOptions::default()).is_err());
        assert!(ingest_text("t", "   \n  ", &IngestOptions::default()).is_err());
    }

    #[test]
    fn header_only_rejected() {
        let err = ingest_text(
            "t",
            "a,b,c\n",
            &IngestOptions {
                header: HeaderMode::Present,
                ..Default::default()
            },
        )
        .unwrap_err();
        assert!(err.to_string().contains("only a header"));
    }

    #[test]
    fn missing_values_become_null_not_text() {
        let (table, _) = ingest_text(
            "t",
            "a,b\n1,\n2,3\n",
            &IngestOptions {
                header: HeaderMode::Present,
                ..Default::default()
            },
        )
        .unwrap();
        // Column b stays Int despite the empty cell.
        assert_eq!(table.schema.columns[1].ty, DataType::Int);
        assert!(table.rows().iter().any(|r| r[1].is_null()));
    }

    #[test]
    fn forced_delimiter_wins() {
        let (table, report) = ingest_text(
            "t",
            "a;b\n1;2\n",
            &IngestOptions {
                delimiter: Some(';'),
                ..Default::default()
            },
        )
        .unwrap();
        assert_eq!(report.delimiter, ';');
        assert_eq!(table.schema.len(), 2);
    }

    #[test]
    fn dates_inferred() {
        let (table, _) = ingest_text(
            "t",
            "day,v\n2013-06-01,1\n2013-06-02,2\n",
            &IngestOptions::default(),
        )
        .unwrap();
        assert_eq!(table.schema.columns[0].ty, DataType::Date);
    }
}
