//! Server-side file staging (§3.1).
//!
//! "By staging the file server-side we ensure robustness: if ingest
//! fails, we can retry without forcing the user to re-upload the data."
//! Staged files live until explicitly discarded; ingest attempts are
//! counted, and a fault injector lets tests exercise the retry path.

use crate::{ingest_text, IngestOptions, IngestReport};
use sqlshare_common::{Error, Result};
use sqlshare_engine::Table;
use std::collections::HashMap;

/// Identifier of a staged upload.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct StageId(pub u64);

/// One staged file.
#[derive(Debug, Clone)]
pub struct StagedFile {
    pub id: StageId,
    pub filename: String,
    pub content: String,
    /// How many ingest attempts have been made against this staged file.
    pub attempts: u32,
}

/// The staging area.
#[derive(Debug, Default)]
pub struct Staging {
    files: HashMap<StageId, StagedFile>,
    next_id: u64,
    /// Fault injection: fail the next N ingest attempts (any file).
    inject_failures: u32,
}

impl Staging {
    pub fn new() -> Self {
        Self::default()
    }

    /// Stage an uploaded file; returns its id for later ingest/retry.
    pub fn stage(&mut self, filename: impl Into<String>, content: impl Into<String>) -> StageId {
        let id = StageId(self.next_id);
        self.next_id += 1;
        self.files.insert(
            id,
            StagedFile {
                id,
                filename: filename.into(),
                content: content.into(),
                attempts: 0,
            },
        );
        id
    }

    /// Look a staged file up.
    pub fn get(&self, id: StageId) -> Option<&StagedFile> {
        self.files.get(&id)
    }

    /// Number of files currently staged.
    pub fn len(&self) -> usize {
        self.files.len()
    }

    /// True when nothing is staged.
    pub fn is_empty(&self) -> bool {
        self.files.is_empty()
    }

    /// Make the next `n` ingest attempts fail (tests/chaos).
    pub fn inject_failures(&mut self, n: u32) {
        self.inject_failures = n;
    }

    /// Attempt to ingest a staged file into a table named `table_name`.
    /// On failure the file *remains staged* so the caller can retry
    /// without re-uploading; on success it is removed.
    pub fn ingest(
        &mut self,
        id: StageId,
        table_name: &str,
        options: &IngestOptions,
    ) -> Result<(Table, IngestReport)> {
        let file = self
            .files
            .get_mut(&id)
            .ok_or_else(|| Error::Ingest(format!("no staged file with id {}", id.0)))?;
        file.attempts += 1;
        if self.inject_failures > 0 {
            self.inject_failures -= 1;
            return Err(Error::Ingest(
                "transient backend failure during ingest (staged file retained)".into(),
            ));
        }
        let result = ingest_text(table_name, &file.content, options);
        if result.is_ok() {
            self.files.remove(&id);
        }
        result
    }

    /// Discard a staged file without ingesting it.
    pub fn discard(&mut self, id: StageId) -> bool {
        self.files.remove(&id).is_some()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stage_ingest_removes_file() {
        let mut s = Staging::new();
        let id = s.stage("data.csv", "a,b\n1,2\n");
        assert_eq!(s.len(), 1);
        let (table, _) = s.ingest(id, "data", &IngestOptions::default()).unwrap();
        assert_eq!(table.row_count(), 1);
        assert!(s.is_empty());
    }

    #[test]
    fn failed_ingest_keeps_file_for_retry() {
        let mut s = Staging::new();
        let id = s.stage("data.csv", "a,b\n1,2\n");
        s.inject_failures(1);
        assert!(s.ingest(id, "data", &IngestOptions::default()).is_err());
        assert_eq!(s.len(), 1);
        assert_eq!(s.get(id).unwrap().attempts, 1);
        // Retry succeeds without re-staging.
        let (table, _) = s.ingest(id, "data", &IngestOptions::default()).unwrap();
        assert_eq!(table.row_count(), 1);
        assert!(s.is_empty());
    }

    #[test]
    fn bad_content_keeps_file() {
        let mut s = Staging::new();
        let id = s.stage("empty.csv", "   ");
        assert!(s.ingest(id, "empty", &IngestOptions::default()).is_err());
        assert_eq!(s.len(), 1);
        assert!(s.discard(id));
        assert!(s.is_empty());
    }

    #[test]
    fn unknown_id_is_an_error() {
        let mut s = Staging::new();
        assert!(s
            .ingest(StageId(42), "x", &IngestOptions::default())
            .is_err());
    }
}
