//! Delimited-text parsing with RFC-4180-style quoting.

/// Parse `content` into records using `delimiter`. Supports `"quoted"`
/// fields with `""` escapes and embedded delimiters/newlines; tolerates
/// `\r\n` line endings; skips fully-empty trailing lines.
pub fn parse_delimited(content: &str, delimiter: char) -> Vec<Vec<String>> {
    let mut records = Vec::new();
    let mut record: Vec<String> = Vec::new();
    let mut field = String::new();
    let mut in_quotes = false;
    let mut chars = content.chars().peekable();
    let mut field_started = false;

    while let Some(c) = chars.next() {
        if in_quotes {
            match c {
                '"' => {
                    if chars.peek() == Some(&'"') {
                        field.push('"');
                        chars.next();
                    } else {
                        in_quotes = false;
                    }
                }
                other => field.push(other),
            }
            continue;
        }
        match c {
            '"' if field.is_empty() && !field_started => {
                in_quotes = true;
                field_started = true;
            }
            '\r' => {
                // Swallow; `\n` handles the record break.
            }
            '\n' => {
                record.push(std::mem::take(&mut field));
                field_started = false;
                // Skip records that are entirely empty (blank lines).
                if record.len() > 1 || !record[0].trim().is_empty() {
                    records.push(std::mem::take(&mut record));
                } else {
                    record.clear();
                }
            }
            c if c == delimiter => {
                record.push(std::mem::take(&mut field));
                field_started = false;
            }
            other => {
                field.push(other);
                field_started = true;
            }
        }
    }
    // Trailing record without newline.
    if field_started || !field.is_empty() || !record.is_empty() {
        record.push(field);
        if record.len() > 1 || !record[0].trim().is_empty() {
            records.push(record);
        }
    }
    records
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn basic_rows() {
        let rows = parse_delimited("a,b\n1,2\n", ',');
        assert_eq!(rows, vec![vec!["a", "b"], vec!["1", "2"]]);
    }

    #[test]
    fn no_trailing_newline() {
        let rows = parse_delimited("a,b\n1,2", ',');
        assert_eq!(rows.len(), 2);
        assert_eq!(rows[1], vec!["1", "2"]);
    }

    #[test]
    fn crlf_line_endings() {
        let rows = parse_delimited("a,b\r\n1,2\r\n", ',');
        assert_eq!(rows, vec![vec!["a", "b"], vec!["1", "2"]]);
    }

    #[test]
    fn quoted_fields() {
        let rows = parse_delimited("\"a,x\",b\n\"line\nbreak\",2\n", ',');
        assert_eq!(rows[0][0], "a,x");
        assert_eq!(rows[1][0], "line\nbreak");
    }

    #[test]
    fn escaped_quotes() {
        let rows = parse_delimited("\"he said \"\"hi\"\"\",2\n", ',');
        assert_eq!(rows[0][0], "he said \"hi\"");
    }

    #[test]
    fn blank_lines_skipped() {
        let rows = parse_delimited("a,b\n\n1,2\n   \n", ',');
        assert_eq!(rows.len(), 2);
    }

    #[test]
    fn empty_fields_preserved() {
        let rows = parse_delimited("a,,c\n", ',');
        assert_eq!(rows[0], vec!["a", "", "c"]);
    }

    #[test]
    fn trailing_delimiter_makes_empty_field() {
        let rows = parse_delimited("a,b,\n", ',');
        assert_eq!(rows[0], vec!["a", "b", ""]);
    }

    #[test]
    fn quote_midfield_is_literal() {
        let rows = parse_delimited("ab\"cd,e\n", ',');
        assert_eq!(rows[0], vec!["ab\"cd", "e"]);
    }
}
