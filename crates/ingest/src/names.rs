//! Column-name handling: header detection, default names, deduplication.
//!
//! "Somewhat surprisingly, almost 50% of the datasets uploaded did not
//! have column names supplied in the source file" (§3.1), so default
//! names are a first-class path, and §5.1 measures how often users later
//! rename them in SQL.

/// Heuristic header detection: the first row is a header when it has no
/// empty cells, none of its cells parse as a number or date, and at least
/// one column *below* it is numeric or date-like (i.e. the first row is
/// typed differently from the data).
pub fn looks_like_header(records: &[Vec<String>]) -> bool {
    if records.len() < 2 {
        return false;
    }
    let first = &records[0];
    if first.is_empty() || first.iter().any(|c| c.trim().is_empty()) {
        return false;
    }
    if first.iter().any(|c| is_data_like(c)) {
        return false;
    }
    // Does some column below look typed?
    let width = first.len();
    for col in 0..width {
        let mut saw_value = false;
        let mut all_data_like = true;
        for row in records.iter().skip(1).take(50) {
            if let Some(cell) = row.get(col) {
                if cell.trim().is_empty() {
                    continue;
                }
                saw_value = true;
                if !is_data_like(cell) {
                    all_data_like = false;
                    break;
                }
            }
        }
        if saw_value && all_data_like {
            return true;
        }
    }
    // All-text data: still treat the first row as a header when its cells
    // are unique identifiers (common for categorical tables).
    let mut sorted: Vec<String> = first.iter().map(|s| s.trim().to_lowercase()).collect();
    sorted.sort();
    sorted.dedup();
    sorted.len() == first.len() && first.iter().all(|c| looks_like_identifier(c))
}

fn is_data_like(cell: &str) -> bool {
    let t = cell.trim();
    !t.is_empty()
        && (t.parse::<f64>().is_ok() || sqlshare_engine::value::parse_date(t).is_some())
}

fn looks_like_identifier(cell: &str) -> bool {
    let t = cell.trim();
    !t.is_empty()
        && t.chars()
            .all(|c| c.is_alphanumeric() || c == '_' || c == ' ' || c == '-' || c == '.')
}

/// Fill in missing names with `columnN` defaults, sanitize nothing (the
/// engine brackets weird identifiers), and deduplicate collisions with
/// numeric suffixes. Returns the final names and how many were defaulted.
pub fn finalize_names(raw: &[Option<String>]) -> (Vec<String>, usize) {
    let mut names: Vec<String> = Vec::with_capacity(raw.len());
    let mut defaulted = 0usize;
    for (i, n) in raw.iter().enumerate() {
        match n {
            Some(name) => names.push(name.clone()),
            None => {
                names.push(format!("column{i}"));
                defaulted += 1;
            }
        }
    }
    // Deduplicate case-insensitively.
    for i in 0..names.len() {
        let mut candidate = names[i].clone();
        let mut suffix = 1usize;
        while names[..i]
            .iter()
            .any(|n| n.eq_ignore_ascii_case(&candidate))
        {
            suffix += 1;
            candidate = format!("{}_{suffix}", names[i]);
        }
        names[i] = candidate;
    }
    (names, defaulted)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rows(data: &[&[&str]]) -> Vec<Vec<String>> {
        data.iter()
            .map(|r| r.iter().map(|s| s.to_string()).collect())
            .collect()
    }

    #[test]
    fn numeric_data_under_labels_is_a_header() {
        assert!(looks_like_header(&rows(&[
            &["station", "depth"],
            &["1", "5.0"],
            &["2", "10.0"],
        ])));
    }

    #[test]
    fn all_numeric_first_row_is_data() {
        assert!(!looks_like_header(&rows(&[&["1", "2"], &["3", "4"]])));
    }

    #[test]
    fn empty_header_cell_means_no_header() {
        assert!(!looks_like_header(&rows(&[
            &["a", ""],
            &["1", "2"],
        ])));
    }

    #[test]
    fn date_in_first_row_is_data() {
        assert!(!looks_like_header(&rows(&[
            &["2013-06-01", "x"],
            &["2013-06-02", "y"],
        ])));
    }

    #[test]
    fn single_row_never_a_header() {
        assert!(!looks_like_header(&rows(&[&["a", "b"]])));
    }

    #[test]
    fn all_text_unique_identifiers_count_as_header() {
        assert!(looks_like_header(&rows(&[
            &["name", "species"],
            &["rex", "dog"],
            &["tom", "cat"],
        ])));
    }

    #[test]
    fn defaults_and_dedup() {
        let (names, defaulted) = finalize_names(&[
            Some("a".into()),
            None,
            Some("A".into()),
            None,
        ]);
        assert_eq!(names, vec!["a", "column1", "A_2", "column3"]);
        assert_eq!(defaulted, 2);
    }

    #[test]
    fn all_default() {
        let (names, defaulted) = finalize_names(&[None, None]);
        assert_eq!(names, vec!["column0", "column1"]);
        assert_eq!(defaulted, 2);
    }
}
