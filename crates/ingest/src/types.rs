//! Column type inference.
//!
//! "To infer column types, the first N records are inspected. For each
//! column, the most-specific type is identified. ... This prefix
//! inspection heuristic can fail, and non-integer types may be
//! encountered further down in the dataset. In that case, the database
//! raises an exception, we revert the type to a string via ALTER TABLE,
//! and the ingest continues." (§3.1)

use crate::cell_to_value;
use sqlshare_engine::{DataType, Row, Value};

/// The specificity lattice walked during inference, most specific first.
/// (`unify` in the engine encodes the same lattice; inference tries each
/// type in this order and takes the first that fits all prefix values.)
const LATTICE: [DataType; 4] = [
    DataType::Int,
    DataType::Float,
    DataType::Date,
    DataType::Bool,
];

/// Infer one type per column from the first `prefix` records. Columns with
/// no non-empty prefix values fall back to Text.
pub fn infer_types(records: &[Vec<String>], prefix: usize) -> Vec<DataType> {
    let width = records.iter().map(Vec::len).max().unwrap_or(0);
    let sample = &records[..records.len().min(prefix.max(1))];
    (0..width)
        .map(|col| {
            let mut any = false;
            let ty = LATTICE
                .into_iter()
                .find(|&ty| {
                    sample.iter().all(|row| match row.get(col) {
                        None => true,
                        Some(cell) if cell.trim().is_empty() => true,
                        Some(cell) => {
                            any = true;
                            cell_to_value(cell, ty).is_some()
                        }
                    })
                })
                .unwrap_or(DataType::Text);
            // Track whether the column had any value at all in the prefix;
            // an all-empty column is Text.
            let mut saw_value = false;
            for row in sample {
                if let Some(cell) = row.get(col) {
                    if !cell.trim().is_empty() {
                        saw_value = true;
                        break;
                    }
                }
            }
            if saw_value {
                ty
            } else {
                DataType::Text
            }
        })
        .collect()
}

/// Convert all records under the inferred types. When a value past the
/// prefix fails to convert, the column *reverts to string* and conversion
/// restarts for that column (the paper's ALTER TABLE fallback). Returns
/// the rows, the final per-column types, and the indexes of reverted
/// columns.
pub fn convert_rows(
    records: &[Vec<String>],
    inferred: &[DataType],
) -> (Vec<Row>, Vec<DataType>, Vec<usize>) {
    let width = inferred.len();
    let mut types = inferred.to_vec();
    let mut reverted = Vec::new();

    // Find columns that need reverting (single pass per column).
    for (col, ty) in types.iter_mut().enumerate() {
        if *ty == DataType::Text {
            continue;
        }
        let fails = records.iter().any(|row| {
            row.get(col)
                .map(|cell| cell_to_value(cell, *ty).is_none())
                .unwrap_or(false)
        });
        if fails {
            *ty = DataType::Text;
            reverted.push(col);
        }
    }

    let rows = records
        .iter()
        .map(|record| {
            (0..width)
                .map(|col| {
                    record
                        .get(col)
                        .map(|cell| {
                            cell_to_value(cell, types[col]).unwrap_or_else(|| {
                                // Unreachable after the revert pass, but be
                                // lenient rather than panic on logic drift.
                                Value::Text(cell.clone())
                            })
                        })
                        .unwrap_or(Value::Null)
                })
                .collect()
        })
        .collect();
    (rows, types, reverted)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn recs(data: &[&[&str]]) -> Vec<Vec<String>> {
        data.iter()
            .map(|r| r.iter().map(|s| s.to_string()).collect())
            .collect()
    }

    #[test]
    fn most_specific_type_wins() {
        let r = recs(&[&["1", "1.5", "2013-01-02", "true", "abc"]]);
        assert_eq!(
            infer_types(&r, 10),
            vec![
                DataType::Int,
                DataType::Float,
                DataType::Date,
                DataType::Bool,
                DataType::Text
            ]
        );
    }

    #[test]
    fn ints_generalize_to_float() {
        let r = recs(&[&["1"], &["2.5"]]);
        assert_eq!(infer_types(&r, 10), vec![DataType::Float]);
    }

    #[test]
    fn empty_cells_do_not_block_inference() {
        let r = recs(&[&[""], &["3"], &[""]]);
        assert_eq!(infer_types(&r, 10), vec![DataType::Int]);
    }

    #[test]
    fn all_empty_column_is_text() {
        let r = recs(&[&["", "1"], &["", "2"]]);
        assert_eq!(infer_types(&r, 10), vec![DataType::Text, DataType::Int]);
    }

    #[test]
    fn prefix_limits_inspection() {
        let r = recs(&[&["1"], &["2"], &["oops"]]);
        // With prefix 2, inference says Int...
        assert_eq!(infer_types(&r, 2), vec![DataType::Int]);
        // ...and conversion reverts to Text.
        let (rows, types, reverted) = convert_rows(&r, &[DataType::Int]);
        assert_eq!(types, vec![DataType::Text]);
        assert_eq!(reverted, vec![0]);
        assert_eq!(rows[2][0], Value::Text("oops".into()));
    }

    #[test]
    fn conversion_produces_nulls_for_missing() {
        let r = recs(&[&["1", "x"], &["2"]]);
        let (rows, _, _) = convert_rows(&r, &[DataType::Int, DataType::Text]);
        assert!(rows[1][1].is_null());
    }

    #[test]
    fn no_false_reverts() {
        let r = recs(&[&["1"], &["2"], &["3"]]);
        let (_, types, reverted) = convert_rows(&r, &[DataType::Int]);
        assert_eq!(types, vec![DataType::Int]);
        assert!(reverted.is_empty());
    }
}
