//! Delimiter inference.
//!
//! "To infer the format, we consider various row and column delimiter
//! values until the first N rows can be parsed with identical column
//! counts" (§3.1). Row delimiters are `\n` / `\r\n`; column candidates
//! are comma, tab, semicolon, and pipe.

use crate::parser::parse_delimited;
use sqlshare_common::{Error, Result};

/// Candidate column delimiters, in preference order.
pub const CANDIDATES: [char; 4] = [',', '\t', ';', '|'];

/// Infer the column delimiter: the candidate under which the first
/// `prefix` parsed rows all have the same column count, preferring the
/// candidate that yields the most columns (a consistent 1-column parse is
/// always possible, so width breaks ties meaningfully).
pub fn infer_delimiter(content: &str, prefix: usize) -> Result<char> {
    let prefix = prefix.max(2);
    let mut best: Option<(char, usize)> = None;
    for &candidate in &CANDIDATES {
        let rows = parse_delimited(content, candidate);
        let sample: Vec<_> = rows.iter().take(prefix).collect();
        if sample.is_empty() {
            continue;
        }
        let width = sample[0].len();
        // A single-column parse is trivially uniform and proves nothing;
        // it only wins through the fallback below.
        if width < 2 || !sample.iter().all(|r| r.len() == width) {
            continue;
        }
        if best.map(|(_, w)| width > w).unwrap_or(true) {
            best = Some((candidate, width));
        }
    }
    if let Some((c, _)) = best {
        return Ok(c);
    }
    // No candidate parses uniformly: fall back to the candidate with the
    // most common width in the prefix (dirty data is tolerated, not
    // rejected — ragged rows are padded later).
    let mut fallback: Option<(char, usize, usize)> = None; // (delim, mode_count, width)
    for &candidate in &CANDIDATES {
        let rows = parse_delimited(content, candidate);
        let sample: Vec<_> = rows.iter().take(prefix).collect();
        if sample.is_empty() {
            continue;
        }
        let mut counts: Vec<(usize, usize)> = Vec::new(); // (width, freq)
        for r in &sample {
            match counts.iter_mut().find(|(w, _)| *w == r.len()) {
                Some((_, f)) => *f += 1,
                None => counts.push((r.len(), 1)),
            }
        }
        let (width, freq) = counts
            .into_iter()
            .max_by_key(|&(w, f)| (f, w))
            .unwrap_or((1, 0));
        if width == 0 {
            continue;
        }
        // Rank multi-column parses above single-column ones, then by
        // modal frequency, then by width.
        let better = match fallback {
            None => true,
            Some((_, bf, bw)) => {
                ((width > 1) as u8, freq, width) > ((bw > 1) as u8, bf, bw)
            }
        };
        if better {
            fallback = Some((candidate, freq, width));
        }
    }
    fallback
        .map(|(c, _, _)| c)
        .ok_or_else(|| Error::Ingest("could not infer a column delimiter".into()))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn comma_preferred_when_uniform() {
        assert_eq!(infer_delimiter("a,b,c\n1,2,3\n", 10).unwrap(), ',');
    }

    #[test]
    fn tab_detected() {
        assert_eq!(infer_delimiter("a\tb\n1\t2\n", 10).unwrap(), '\t');
    }

    #[test]
    fn semicolon_and_pipe() {
        assert_eq!(infer_delimiter("a;b;c\n1;2;3\n", 10).unwrap(), ';');
        assert_eq!(infer_delimiter("a|b\n1|2\n", 10).unwrap(), '|');
    }

    #[test]
    fn widest_uniform_parse_wins() {
        // Commas appear in every row; semicolons only in one. The comma
        // parse is uniform and wider.
        assert_eq!(infer_delimiter("a,b,c\nd,e;f,g\n", 10).unwrap(), ',');
    }

    #[test]
    fn single_column_file_falls_back() {
        assert_eq!(infer_delimiter("alpha\nbeta\n", 10).unwrap(), ',');
    }

    #[test]
    fn ragged_file_uses_modal_width() {
        // Three comma rows of width 3, one of width 2: no uniform parse,
        // but comma has the strongest mode.
        let d = infer_delimiter("1,2,3\n4,5,6\n7,8\n9,10,11\n", 10).unwrap();
        assert_eq!(d, ',');
    }

    #[test]
    fn quoted_delimiters_do_not_confuse() {
        let d = infer_delimiter("\"a,b\",c\n\"d,e\",f\n", 10).unwrap();
        assert_eq!(d, ',');
        // And the parse under that delimiter is 2 columns wide.
        let rows = parse_delimited("\"a,b\",c\n\"d,e\",f\n", d);
        assert!(rows.iter().all(|r| r.len() == 2));
    }
}
