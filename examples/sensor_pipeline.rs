//! The environmental-sensing scenario from §3 of the paper: nutrient data
//! arrives as many separate, dirty files; instead of offline
//! preprocessing, the analyst layers views — rename, clean, integrate,
//! bin — and each layer is a shareable dataset with provenance.
//!
//! ```sh
//! cargo run --example sensor_pipeline
//! ```

use sqlshare_core::{DatasetName, Metadata, SqlShare};
use sqlshare_ingest::IngestOptions;
use sqlshare_sql::rewrite::AppendMode;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut sqlshare = SqlShare::new();
    sqlshare.register_user("rfernand", "rf@ocean.uw.edu")?;

    // Three cruise files for the same logical dataset, with the data
    // problems the paper enumerates: string flags for missing numbers,
    // no headers on one file, inconsistent collection batches.
    let june = "\
station,depth,nitrate,flag
1,2.0,0.31,ok
1,10.0,-999,bad_bottle
2,2.0,0.58,ok
2,10.0,0.77,ok
";
    let july = "\
station,depth,nitrate,flag
1,2.0,0.29,ok
2,2.0,NA,sensor_drift
3,2.0,0.66,ok
";
    let august_headerless = "\
1,2.0,0.35,ok
3,2.0,0.61,ok
3,10.0,0.92,ok
";

    for (name, content) in [("nutrients_june", june), ("nutrients_july", july)] {
        let (dn, _) = sqlshare.upload("rfernand", name, content, &IngestOptions::default())?;
        println!("uploaded {dn}");
    }
    let (august, report) = sqlshare.upload(
        "rfernand",
        "nutrients_august",
        august_headerless,
        &IngestOptions::default(),
    )?;
    println!(
        "uploaded {august} (headerless: {} default names assigned)",
        report.default_names_assigned
    );

    // Layer 1 — rename the headerless file's columns in SQL (§5.1).
    sqlshare.save_dataset(
        "rfernand",
        "nutrients_august_named",
        "SELECT column0 AS station, column1 AS depth, column2 AS nitrate, column3 AS flag \
         FROM nutrients_august",
        Metadata {
            description: "August cruise with semantic column names".into(),
            tags: vec!["rename".into()],
        },
    )?;

    // Layer 2 — vertical recomposition: one logical dataset (§5.1).
    sqlshare.save_dataset(
        "rfernand",
        "nutrients_all",
        "SELECT station, depth, nitrate, flag FROM nutrients_june \
         UNION ALL SELECT station, depth, nitrate, flag FROM nutrients_july \
         UNION ALL SELECT station, depth, nitrate, flag FROM rfernand.nutrients_august_named",
        Metadata {
            description: "all 2013 cruises, recomposed".into(),
            tags: vec!["integration".into()],
        },
    )?;

    // Layer 3 — NULL injection + post-hoc types (§5.1).
    sqlshare.save_dataset(
        "rfernand",
        "nutrients_qc",
        "SELECT station, depth, \
         TRY_CAST(CASE WHEN nitrate = '-999' THEN NULL WHEN nitrate = 'NA' THEN NULL \
         ELSE nitrate END AS FLOAT) AS nitrate \
         FROM rfernand.nutrients_all WHERE flag = 'ok' OR flag = 'sensor_drift'",
        Metadata {
            description: "quality-controlled nitrate".into(),
            tags: vec!["cleaning".into()],
        },
    )?;

    // Layer 4 — binning by depth, the §5.3 histogram idiom.
    sqlshare.save_dataset(
        "rfernand",
        "nitrate_by_depth",
        "SELECT FLOOR(depth / 5) * 5 AS depth_bin, COUNT(*) AS n, AVG(nitrate) AS mean_nitrate \
         FROM rfernand.nutrients_qc GROUP BY FLOOR(depth / 5) * 5",
        Metadata {
            description: "hourly-average analogue: nitrate binned by depth".into(),
            tags: vec!["analysis".into()],
        },
    )?;

    let out = sqlshare.run_query(
        "rfernand",
        "SELECT depth_bin, n, mean_nitrate FROM nitrate_by_depth ORDER BY depth_bin",
    )?;
    println!("\nnitrate by depth bin:");
    for row in &out.rows {
        println!("  {:>4}m  n={}  mean={}", row[0], row[1], row[2]);
    }

    // A new batch arrives: append via view rewrite (§3.2). Every
    // downstream layer sees it with no changes.
    let (september, _) = sqlshare.upload(
        "rfernand",
        "nutrients_september",
        "station,depth,nitrate,flag\n1,2.0,0.27,ok\n2,2.0,0.49,ok\n",
        &IngestOptions::default(),
    )?;
    sqlshare.append(
        "rfernand",
        &DatasetName::new("rfernand", "nutrients_all"),
        &september,
        AppendMode::UnionAll,
    )?;
    let after = sqlshare.run_query(
        "rfernand",
        "SELECT COUNT(*) FROM rfernand.nutrients_qc",
    )?;
    println!(
        "\nafter September append, quality-controlled rows: {}",
        after.rows[0][0]
    );

    // Freeze the result for a paper: a snapshot is immune to later edits.
    let snap = sqlshare.materialize(
        "rfernand",
        &DatasetName::new("rfernand", "nitrate_by_depth"),
        "nitrate_by_depth_pub2013",
    )?;
    println!("minted snapshot {snap} for publication");

    // Provenance: the full chain is inspectable.
    println!("\nprovenance chain:");
    for ds in sqlshare.datasets() {
        println!(
            "  [{}] {} := {}",
            match ds.kind {
                sqlshare_core::DatasetKind::Uploaded => "table",
                sqlshare_core::DatasetKind::Derived => "view ",
                sqlshare_core::DatasetKind::Snapshot => "snap ",
            },
            ds.name,
            ds.sql.chars().take(64).collect::<String>()
        );
    }
    Ok(())
}
