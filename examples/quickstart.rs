//! Quickstart: the minimal SQLShare workflow from the paper's abstract —
//! *upload data, write queries, share the results* — in under a minute.
//!
//! ```sh
//! cargo run --example quickstart
//! ```

use sqlshare_core::{Metadata, SqlShare, Visibility};
use sqlshare_ingest::IngestOptions;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut sqlshare = SqlShare::new();
    sqlshare.register_user("ada", "ada@uw.edu")?;
    sqlshare.register_user("collaborator", "c@partner.org")?;

    // 1. Upload a messy CSV exactly as it came off the instrument: no
    //    header, a ragged row, sentinel values. Nothing is rejected.
    let csv = "\
1,5.0,0.31,2013-06-01
1,10.0,-999,2013-06-01
2,5.0,0.58,2013-06-02
2,10.0,0.77
3,5.0,NA,2013-06-03
";
    let (name, report) =
        sqlshare.upload("ada", "nitrate_profiles", csv, &IngestOptions::default())?;
    println!("uploaded {name}:");
    println!("  inferred delimiter : {:?}", report.delimiter);
    println!("  header detected    : {}", report.header_used);
    println!("  default names      : {}", report.default_names_assigned);
    println!("  padded ragged rows : {}", report.padded_rows);

    // 2. Query it immediately — full SQL, no schema design step. The
    //    engine even finds a clustered-index seek through the wrapper view.
    let result = sqlshare.run_query(
        "ada",
        "SELECT column0 AS station, AVG(column1) AS mean_depth \
         FROM nitrate_profiles WHERE column0 BETWEEN 1 AND 2 GROUP BY column0",
    )?;
    println!("\nstation depth means ({} rows):", result.rows.len());
    for row in &result.rows {
        println!("  station {} -> {}", row[0], row[1]);
    }

    // 3. Impose structure *in SQL* (§5.1 idioms): rename the defaulted
    //    columns, null out the sentinels, cast the types — as a view.
    let clean = sqlshare.save_dataset(
        "ada",
        "nitrate_clean",
        "SELECT column0 AS station, column1 AS depth_m, \
         TRY_CAST(NULLIF(NULLIF(column2, '-999'), 'NA') AS FLOAT) AS nitrate_um \
         FROM nitrate_profiles",
        Metadata {
            description: "nitrate profiles with sentinels nulled and typed columns".into(),
            tags: vec!["cleaning".into(), "quickstart".into()],
        },
    )?;
    println!("\nsaved derived dataset {clean}");

    // 4. Share it. The collaborator reads the *view*; the raw upload stays
    //    private (ownership chains, §3.2).
    sqlshare.set_visibility(
        "ada",
        &clean,
        Visibility::Shared(vec!["collaborator".into()]),
    )?;
    let shared = sqlshare.run_query(
        "collaborator",
        "SELECT COUNT(*) AS n, AVG(nitrate_um) AS mean_nitrate FROM ada.nitrate_clean",
    )?;
    println!(
        "collaborator sees n={}, mean={}",
        shared.rows[0][0], shared.rows[0][1]
    );
    let denied = sqlshare.run_query("collaborator", "SELECT * FROM ada.nitrate_profiles");
    println!("raw upload stays private: {}", denied.unwrap_err());

    // 5. Everything was logged as a research corpus (§4).
    println!("\nquery log now holds {} entries", sqlshare.log().len());
    Ok(())
}
