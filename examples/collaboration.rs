//! Collaborative analysis and data publishing (§5.2 of the paper):
//! fine-grained sharing, ownership chains, cross-owner derived views, and
//! "download results" instead of emailing files.
//!
//! ```sh
//! cargo run --example collaboration
//! ```

use sqlshare_core::{DatasetName, Metadata, SqlShare, Visibility};
use sqlshare_ingest::IngestOptions;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut sqlshare = SqlShare::new();
    for (user, email) in [
        ("pi_lab", "pi@uw.edu"),
        ("grad_student", "gs@uw.edu"),
        ("external", "ext@institute.org"),
    ] {
        sqlshare.register_user(user, email)?;
    }

    // The PI uploads sensitive subject data (stays private) and derives a
    // de-identified view.
    sqlshare.upload(
        "pi_lab",
        "subjects_raw",
        "subject,age,score,clinic\n1,34,88,north\n2,41,72,south\n3,29,95,north\n4,55,61,south\n",
        &IngestOptions::default(),
    )?;
    let deid = sqlshare.save_dataset(
        "pi_lab",
        "scores_deidentified",
        "SELECT clinic, age / 10 * 10 AS age_decade, score FROM subjects_raw",
        Metadata {
            description: "subject scores without identifiers".into(),
            tags: vec!["deidentified".into()],
        },
    )?;

    // Share the protected view with the grad student only; the raw table
    // remains unreachable (unbroken ownership chain, §3.2).
    sqlshare.set_visibility(
        "pi_lab",
        &deid,
        Visibility::Shared(vec!["grad_student".into()]),
    )?;
    let ok = sqlshare.run_query(
        "grad_student",
        "SELECT clinic, AVG(score) AS mean_score FROM pi_lab.scores_deidentified GROUP BY clinic",
    )?;
    println!("grad student reads the shared view: {} rows", ok.rows.len());
    let denied = sqlshare.run_query("grad_student", "SELECT * FROM pi_lab.subjects_raw");
    println!("...but not the raw data: {}", denied.unwrap_err());

    // The grad student derives their own analysis view and shares it with
    // the external collaborator — and hits the paper's broken-chain rule.
    let summary = sqlshare.save_dataset(
        "grad_student",
        "clinic_summary",
        "SELECT clinic, COUNT(*) AS n, AVG(score) AS mean_score \
         FROM pi_lab.scores_deidentified GROUP BY clinic",
        Metadata::default(),
    )?;
    sqlshare.set_visibility(
        "grad_student",
        &summary,
        Visibility::Shared(vec!["external".into()]),
    )?;
    let broken = sqlshare.run_query("external", "SELECT * FROM grad_student.clinic_summary");
    println!("\nexternal collaborator, broken chain: {}", broken.unwrap_err());

    // The PI heals the chain by making the de-identified view public —
    // which also turns SQLShare into a data-publishing platform (§5.2:
    // 37% of datasets ended up public; users cited datasets in papers).
    sqlshare.set_visibility("pi_lab", &deid, Visibility::Public)?;
    let healed = sqlshare.run_query("external", "SELECT * FROM grad_student.clinic_summary")?;
    println!("after publishing the view: {} rows", healed.rows.len());

    // Collaborators query in place — "shared datasets could be queried and
    // manipulated without requiring data to be downloaded first" — but a
    // download endpoint exists when they need a file.
    let csv = sqlshare.download("external", &DatasetName::new("grad_student", "clinic_summary"))?;
    println!("\ndownloaded CSV:\n{csv}");

    // §5.2 accounting over this mini-deployment.
    let total = sqlshare.datasets().count();
    let public = sqlshare
        .datasets()
        .filter(|d| matches!(sqlshare.visibility(&d.name), Visibility::Public))
        .count();
    let foreign_queries = sqlshare
        .log()
        .entries()
        .iter()
        .filter(|e| e.touches_foreign_data)
        .count();
    println!(
        "datasets: {total} ({public} public); queries touching non-owned data: {foreign_queries}/{}",
        sqlshare.log().len()
    );
    Ok(())
}
