//! Kill-primary failover bench: zero acknowledged-write loss, measured.
//!
//! Boots a primary/standby pair over throwaway data directories with
//! quorum acks (`SQLSHARE_REPL_ACK=quorum` semantics: a mutation is
//! acknowledged only after the standby confirms its LSN). A serial
//! driver uploads datasets through the failover-aware replay client,
//! kills the primary server halfway through, waits for the standby to
//! promote itself on the lapsed lease, and finishes the run against
//! the survivor. Every upload the driver saw acknowledged must then be
//! readable on the survivor — that is the zero-loss claim in bench
//! form (the randomized mid-ack kills live in
//! `tests/failover_differential.rs`).
//!
//!     cargo run --release -p sqlshare-bench --example failover_bench
//!
//! `SQLSHARE_FAILOVER_OPS` overrides the op count (default 120).

use sqlshare_bench::replay::{FailoverClient, ReplayOp};
use sqlshare_core::{AckMode, DurableOptions, FsyncPolicy, SqlShare};
use sqlshare_server::{HttpConfig, Server};
use std::time::{Duration, Instant};

fn temp_dir(tag: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "sqlshare-failover-bench-{}-{tag}",
        std::process::id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("create temp dir");
    dir
}

fn main() {
    let ops: usize = std::env::var("SQLSHARE_FAILOVER_OPS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(120);
    let heartbeat = Duration::from_millis(20);

    let dir_a = temp_dir("primary");
    let dir_b = temp_dir("standby");

    // Primary: quorum acks — uploads only return once the standby has
    // the record. The ack timeout is generous because the bench cares
    // about loss, not tail latency.
    let mut primary_svc = SqlShare::open(
        DurableOptions::new(&dir_a)
            .fsync(FsyncPolicy::Off)
            .snapshot_every(u64::MAX),
    )
    .expect("open primary");
    primary_svc
        .register_user("ada", "ada@example.org")
        .expect("register user");
    let mut primary_cfg = HttpConfig::default();
    primary_cfg.repl.ack = AckMode::Quorum;
    primary_cfg.repl.quorum = 1;
    primary_cfg.repl.ack_timeout = Duration::from_secs(10);
    primary_cfg.repl.heartbeat = heartbeat;
    let primary = Server::start(primary_svc, "127.0.0.1:0", primary_cfg).expect("bind primary");
    let primary_addr = primary.addr();

    // Standby: follows the primary, promotes itself when the lease
    // lapses (three missed heartbeats).
    let standby_svc = SqlShare::open(
        DurableOptions::new(&dir_b)
            .fsync(FsyncPolicy::Off)
            .snapshot_every(u64::MAX),
    )
    .expect("open standby");
    let mut standby_cfg = HttpConfig::default();
    standby_cfg.repl.primary = Some(primary_addr.to_string());
    standby_cfg.repl.heartbeat = heartbeat;
    standby_cfg.repl.lease_misses = 3;
    let standby = Server::start(standby_svc, "127.0.0.1:0", standby_cfg).expect("bind standby");
    let standby_addr = standby.addr();

    eprintln!("primary {primary_addr}, standby {standby_addr}, {ops} quorum-acked uploads");

    let mut client = FailoverClient::new(vec![primary_addr, standby_addr]);
    let mut acked: Vec<String> = Vec::new();
    let mut ack_micros: Vec<u64> = Vec::new();
    let kill_at = ops / 2;
    let mut primary_handle = Some(primary);
    let started = Instant::now();
    for i in 0..ops {
        if i == kill_at {
            eprintln!("  killing primary after {i} acked uploads...");
            primary_handle.take().unwrap().shutdown();
        }
        let name = format!("run_{i:04}");
        let body = format!(
            r#"{{"user":"ada","name":"{name}","content":"a,b\n{i},{}\n"}}"#,
            i * 2
        );
        let op = ReplayOp::Post("/api/datasets".into(), body);
        let t0 = Instant::now();
        match client.request(&op) {
            Ok(resp) if resp.status < 300 => {
                ack_micros.push(t0.elapsed().as_micros() as u64);
                acked.push(name);
            }
            Ok(resp) => eprintln!("  upload {name} not acked: status {}", resp.status),
            Err(e) => eprintln!("  upload {name} not acked: {e}"),
        }
    }
    let elapsed = started.elapsed();

    // The zero-loss audit: every acknowledged upload must be readable
    // on the survivor.
    let mut missing = 0usize;
    for name in &acked {
        let op = ReplayOp::Get(format!("/api/datasets/ada/{name}?user=ada"));
        match client.request(&op) {
            Ok(resp) if resp.status == 200 => {}
            other => {
                missing += 1;
                eprintln!("  ACKED BUT MISSING on survivor: {name} ({other:?})");
            }
        }
    }

    let mut sorted = ack_micros.clone();
    sorted.sort_unstable();
    let p50 = sqlshare_bench::replay::percentile(&sorted, 50.0);
    let p99 = sqlshare_bench::replay::percentile(&sorted, 99.0);
    eprintln!(
        "acked {}/{} uploads in {:.2}s (quorum ack p50 {p50}us, p99 {p99}us), \
         {} failover(s), survivor at {}",
        acked.len(),
        ops,
        elapsed.as_secs_f64(),
        client.failovers,
        client.active_addr()
    );
    standby.shutdown();
    let _ = std::fs::remove_dir_all(&dir_a);
    let _ = std::fs::remove_dir_all(&dir_b);

    assert_eq!(missing, 0, "{missing} acknowledged uploads lost in failover");
    assert!(client.failovers >= 1, "client never failed over");
    assert!(
        acked.len() > kill_at,
        "no uploads succeeded after the failover"
    );
    eprintln!("zero acknowledged-write loss: PASS");
}
