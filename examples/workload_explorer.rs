//! Generate a small synthetic SQLShare corpus and poke at it with the
//! paper's analysis toolkit — a miniature of what `sqlshare-report` does
//! at full scale, useful for exploring the workload dataset format.
//!
//! ```sh
//! cargo run --release --example workload_explorer [scale] [seed]
//! ```

use sqlshare_wlgen::sqlshare::generate;
use sqlshare_wlgen::GeneratorConfig;
use sqlshare_workload::entropy::entropy;
use sqlshare_workload::extract::extract_corpus;
use sqlshare_workload::lifetimes::{dataset_spans, most_active_users};
use sqlshare_workload::metrics::{operator_frequency, query_means};
use sqlshare_workload::recommend::recommend_for_user;

fn main() {
    let scale: f64 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(0.05);
    let seed: u64 = std::env::args()
        .nth(2)
        .and_then(|s| s.parse().ok())
        .unwrap_or(7);

    println!("generating corpus at scale {scale}, seed {seed}...");
    let corpus = generate(&GeneratorConfig { seed, scale });
    let queries = extract_corpus(corpus.service.log().entries());
    println!(
        "{} users, {} uploads, {} views, {} logged queries ({} extracted)",
        corpus.stats.users,
        corpus.stats.uploads,
        corpus.stats.views_created,
        corpus.service.log().len(),
        queries.len()
    );

    // One raw Listing-1 plan, straight from the query catalog.
    if let Some(q) = queries.iter().find(|q| q.sql.contains("WHERE")) {
        println!("\nexample query: {}", q.sql);
        println!("extracted     : {} ops, {} distinct, tables {:?}",
            q.ops.len(), q.distinct_ops, q.tables);
        println!("plan JSON     :\n{}", q.plan.to_pretty_string());
    }

    let means = query_means(&queries);
    println!(
        "\nper-query means: {:.1} chars, {:.2} ops, {:.2} distinct ops, {:.2} tables",
        means.length_chars, means.operators, means.distinct_operators, means.tables_accessed
    );

    println!("\ntop physical operators (Clustered Index Scan excluded):");
    for (op, pct) in operator_frequency(&queries, &["Clustered Index Scan"])
        .iter()
        .take(8)
    {
        println!("  {op:22} {pct:5.1}%");
    }

    let e = entropy(&queries);
    println!(
        "\nentropy: {} queries, {} string-distinct ({:.1}%), {} templates ({:.1}% of distinct)",
        e.total_queries,
        e.string_distinct,
        e.string_pct(),
        e.template_distinct,
        e.template_pct()
    );

    let spans = dataset_spans(&queries);
    let short = spans.values().filter(|s| s.lifetime_days() <= 10).count();
    println!(
        "\ndataset lifetimes: {}/{} tables live <=10 days",
        short,
        spans.len()
    );
    let top = most_active_users(&queries, 5);
    println!("most active users: {top:?}");

    // The paper's §8 proposal in action: suggest queries of comparable
    // complexity (but new templates) to the most active user.
    if let Some(user) = top.first() {
        println!("\nrecommendations for {user}:");
        for rec in recommend_for_user(&queries, user, 3) {
            println!(
                "  [{:.2}] {}",
                rec.score,
                rec.query.sql.chars().take(90).collect::<String>()
            );
        }
    }
}
