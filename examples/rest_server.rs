//! The SQLShare HTTP front end (§3.3/§3.4 of the paper: "the front-end
//! UI is in no way a privileged application; it operates the REST
//! interface like any other client").
//!
//! ```sh
//! cargo run --release --example rest_server
//! # in another terminal:
//! curl -s -X POST localhost:7878/api/users \
//!   -d '{"username":"ada","email":"ada@uw.edu"}'
//! curl -s -X POST localhost:7878/api/datasets \
//!   -d '{"user":"ada","name":"tides","content":"station,level\n1,2.4\n2,3.1\n"}'
//! curl -s -X POST localhost:7878/api/queries \
//!   -d '{"user":"ada","sql":"SELECT * FROM ada.tides"}'
//! curl -s localhost:7878/api/queries/1/results
//! ```
//!
//! This runs the non-blocking `sqlshare-server` front end: epoll
//! readiness loops, HTTP/1.1 keep-alive + pipelining, chunked streaming
//! of large result sets, and admission control that degrades to
//! 429 + `Retry-After` under overload. Tune it with
//! `SQLSHARE_HTTP_THREADS`, `SQLSHARE_HTTP_WORKERS`,
//! `SQLSHARE_MAX_CONNS`, `SQLSHARE_MAX_INFLIGHT`, and
//! `SQLSHARE_MAX_BODY_MB`. Pass `--blocking` to run the original
//! thread-per-connection demo loop instead (the benchmark baseline).
//!
//! Set `SQLSHARE_DATA_DIR=/some/path` to run durably: mutations are
//! journaled to a write-ahead log and the catalog is recovered from the
//! latest snapshot + WAL tail on restart (`SQLSHARE_FSYNC` and
//! `SQLSHARE_SNAPSHOT_EVERY` tune the policy). Without it the service
//! is ephemeral, exactly as before.

use sqlshare_core::SqlShare;
use sqlshare_server::{blocking::BlockingServer, HttpConfig, Server};
use std::sync::{Arc, Mutex};

fn main() -> std::io::Result<()> {
    let mut addr = "127.0.0.1:7878".to_string();
    let mut use_blocking = false;
    for arg in std::env::args().skip(1) {
        if arg == "--blocking" {
            use_blocking = true;
        } else {
            addr = arg;
        }
    }

    let service = match SqlShare::from_env() {
        Ok(s) => {
            if let Some(report) = s.recovery_report() {
                println!(
                    "recovered durable state: snapshot lsn {}, {} replayed, {} truncated bytes",
                    report.snapshot_lsn, report.replayed_records, report.truncated_wal_bytes
                );
                if report.snapshot_candidates_skipped > 0 {
                    eprintln!(
                        "warning: {} corrupt snapshot candidate(s) skipped during recovery \
                         (the WAL still covered the gap; state is complete) — \
                         restore or remove them before they are the only copy",
                        report.snapshot_candidates_skipped
                    );
                }
            }
            s
        }
        Err(e) => {
            eprintln!("failed to open data directory: {e}");
            std::process::exit(1);
        }
    };

    if use_blocking {
        let config = HttpConfig::from_env();
        let server =
            BlockingServer::start(Arc::new(Mutex::new(service)), &addr, config.max_body)?;
        println!(
            "SQLShare REST (blocking demo loop) listening on http://{}",
            server.addr()
        );
        // The demo baseline has no signal handling; park forever.
        loop {
            std::thread::park();
        }
    }

    let config = HttpConfig::from_env();
    let server = Server::start(service, &addr, config.clone())?;
    println!("SQLShare REST listening on http://{}", server.addr());
    println!(
        "  {} event loops, {} workers, {} max connections, {} MiB body cap",
        config.threads,
        config.workers,
        config.max_conns,
        config.max_body / (1024 * 1024)
    );
    println!("try: curl -s http://{}/api/datasets", server.addr());
    loop {
        std::thread::park();
    }
}
