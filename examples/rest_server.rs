//! A dependency-free HTTP server exposing the SQLShare REST interface
//! (§3.3/§3.4 of the paper: "the front-end UI is in no way a privileged
//! application; it operates the REST interface like any other client").
//!
//! ```sh
//! cargo run --example rest_server
//! # in another terminal:
//! curl -s -X POST localhost:7878/api/users \
//!   -d '{"username":"ada","email":"ada@uw.edu"}'
//! curl -s -X POST localhost:7878/api/datasets \
//!   -d '{"user":"ada","name":"tides","content":"station,level\n1,2.4\n2,3.1\n"}'
//! curl -s -X POST localhost:7878/api/queries \
//!   -d '{"user":"ada","sql":"SELECT * FROM ada.tides"}'
//! curl -s localhost:7878/api/queries/1/results
//! ```
//!
//! The server handles one request per connection (HTTP/1.0 style) on a
//! small thread pool — plenty for a demo, zero dependencies.
//!
//! Set `SQLSHARE_DATA_DIR=/some/path` to run durably: mutations are
//! journaled to a write-ahead log and the catalog is recovered from the
//! latest snapshot + WAL tail on restart (`SQLSHARE_FSYNC` and
//! `SQLSHARE_SNAPSHOT_EVERY` tune the policy). Without it the service
//! is ephemeral, exactly as before.

use std::sync::Mutex;
use sqlshare_common::json::{self, Json};
use sqlshare_core::rest::{dispatch, Method, Request};
use sqlshare_core::SqlShare;
use std::io::{BufRead, BufReader, Read, Write};
use std::net::{TcpListener, TcpStream};
use std::sync::Arc;

fn main() -> std::io::Result<()> {
    let addr = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "127.0.0.1:7878".to_string());
    let listener = TcpListener::bind(&addr)?;
    println!("SQLShare REST listening on http://{addr}");
    println!("try: curl -s http://{addr}/api/datasets");

    let service = match SqlShare::from_env() {
        Ok(s) => {
            if let Some(report) = s.recovery_report() {
                println!(
                    "recovered durable state: snapshot lsn {}, {} replayed, {} truncated bytes",
                    report.snapshot_lsn, report.replayed_records, report.truncated_wal_bytes
                );
            }
            s
        }
        Err(e) => {
            eprintln!("failed to open data directory: {e}");
            std::process::exit(1);
        }
    };
    let service = Arc::new(Mutex::new(service));
    for stream in listener.incoming() {
        let Ok(stream) = stream else { continue };
        let service = Arc::clone(&service);
        std::thread::spawn(move || {
            if let Err(e) = handle(stream, &service) {
                eprintln!("connection error: {e}");
            }
        });
    }
    Ok(())
}

fn handle(mut stream: TcpStream, service: &Mutex<SqlShare>) -> std::io::Result<()> {
    let mut reader = BufReader::new(stream.try_clone()?);
    let mut request_line = String::new();
    reader.read_line(&mut request_line)?;
    let mut parts = request_line.split_whitespace();
    let (method, path) = match (parts.next(), parts.next()) {
        (Some(m), Some(p)) => (m.to_string(), p.to_string()),
        _ => return respond(&mut stream, 400, &Json::str("bad request line")),
    };

    // Headers: we only need Content-Length.
    let mut content_length = 0usize;
    loop {
        let mut line = String::new();
        reader.read_line(&mut line)?;
        let line = line.trim();
        if line.is_empty() {
            break;
        }
        if let Some(v) = line
            .to_ascii_lowercase()
            .strip_prefix("content-length:")
            .map(str::trim)
        {
            content_length = v.parse().unwrap_or(0);
        }
    }
    let mut body_bytes = vec![0u8; content_length.min(4 * 1024 * 1024)];
    reader.read_exact(&mut body_bytes)?;
    let body = if body_bytes.is_empty() {
        Json::Null
    } else {
        match json::parse(&String::from_utf8_lossy(&body_bytes)) {
            Ok(j) => j,
            Err(e) => {
                return respond(&mut stream, 400, &Json::str(format!("bad JSON body: {e}")))
            }
        }
    };

    let Some(method) = Method::parse(&method) else {
        return respond(&mut stream, 405, &Json::str("unsupported method"));
    };
    let response = dispatch(
        &mut service.lock().unwrap_or_else(|e| e.into_inner()),
        &Request { method, path, body },
    );
    respond(&mut stream, response.status, &response.body)
}

fn respond(stream: &mut TcpStream, status: u16, body: &Json) -> std::io::Result<()> {
    let payload = body.to_pretty_string();
    let reason = match status {
        200 => "OK",
        201 => "Created",
        400 => "Bad Request",
        403 => "Forbidden",
        404 => "Not Found",
        405 => "Method Not Allowed",
        409 => "Conflict",
        422 => "Unprocessable Entity",
        429 => "Too Many Requests",
        503 => "Service Unavailable",
        504 => "Gateway Timeout",
        _ => "Internal Server Error",
    };
    write!(
        stream,
        "HTTP/1.1 {status} {reason}\r\ncontent-type: application/json\r\n\
         content-length: {}\r\nconnection: close\r\n\r\n{payload}",
        payload.len()
    )
}
